package eigen

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestSolverReuseMatchesOneShot runs several different problems through one
// Solver and checks each against the one-shot entry point.
func TestSolverReuseMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSolver(&Options{NB: 8})
	defer s.Close()
	for _, n := range []int{5, 24, 33, 24, 5} { // revisit sizes to hit recycled arenas
		a := randSymMatrix(rng, n)
		got, err := s.Eig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := Eig(a, &Options{NB: 8})
		if err != nil {
			t.Fatalf("n=%d one-shot: %v", n, err)
		}
		if len(got.Values) != len(want.Values) {
			t.Fatalf("n=%d: %d values, want %d", n, len(got.Values), len(want.Values))
		}
		for i := range got.Values {
			if math.Abs(got.Values[i]-want.Values[i]) > 1e-12 {
				t.Fatalf("n=%d value %d: %g vs %g", n, i, got.Values[i], want.Values[i])
			}
		}
		checkResidual(t, a, got)
	}
}

// TestSolverConcurrent hammers one shared Solver from many goroutines and, in
// parallel, independent Solvers — the -race test for the arena pool, the
// shared scheduler, and the header caching. All four pipeline combinations
// (two-stage/one-stage × vectors/values-only) run concurrently.
func TestSolverConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 48
	a := randSymMatrix(rng, n)
	want, err := Eig(a, &Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}

	shared := NewSolver(&Options{NB: 8, Workers: 4})
	defer shared.Close()

	check := func(vals []float64) {
		for i := range vals {
			if math.Abs(vals[i]-want.Values[i]) > 1e-9 {
				t.Errorf("value %d: %g vs %g", i, vals[i], want.Values[i])
				return
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var s *Solver
			if g%2 == 0 {
				s = shared
			} else {
				s = NewSolver(&Options{NB: 8, Algorithm: Algorithm(g % 2 * int(OneStage))})
				defer s.Close()
			}
			for it := 0; it < 3; it++ {
				if (g+it)%2 == 0 {
					res, err := s.Eig(a)
					if err != nil {
						t.Error(err)
						return
					}
					check(res.Values)
				} else {
					vals, err := s.EigValues(a)
					if err != nil {
						t.Error(err)
						return
					}
					check(vals)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSolverConcurrentOneStage runs the one-stage pipeline concurrently on a
// shared Solver (it ignores the scheduler but shares the arena pool).
func TestSolverConcurrentOneStage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSymMatrix(rng, 32)
	s := NewSolver(&Options{NB: 8, Algorithm: OneStage})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Eig(a)
			if err != nil {
				t.Error(err)
				return
			}
			checkResidual(t, a, res)
		}()
	}
	wg.Wait()
}

// TestSolverCancellation covers a context canceled before the solve and one
// canceled mid-solve; both must return the context's error (or, in the racy
// mid-solve case, possibly finish first) and leave the Solver usable.
func TestSolverCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randSymMatrix(rng, 64)

	for _, workers := range []int{1, 4} {
		s := NewSolver(&Options{NB: 8, Workers: workers})

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.EigCtx(ctx, a); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d pre-canceled: got %v, want context.Canceled", workers, err)
		}

		// Cancel concurrently with the solve: either the cancellation wins
		// (context error) or the solve finishes first (valid result) — both
		// are correct; anything else (panic, deadlock, garbage) is not.
		ctx2, cancel2 := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, err := s.EigCtx(ctx2, a)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d mid-solve: unexpected error %v", workers, err)
			}
			if err == nil {
				checkResidual(t, a, res)
			}
		}()
		cancel2()
		<-done

		// The Solver must still work after a canceled solve.
		res, err := s.Eig(a)
		if err != nil {
			t.Fatalf("workers=%d post-cancel solve: %v", workers, err)
		}
		checkResidual(t, a, res)
		s.Close()
	}
}

// TestSolverCancelDuringBacktrans aims the cancellation at the fused
// back-transformation specifically: it waits until the tridiagonal
// eigensolve phase has been recorded (the phase immediately before the
// fused sweep) and cancels then, so with high probability the fused tasks
// are in flight when the context dies. Run under -race this also checks
// the worker-slab sharing discipline during teardown. Either outcome —
// context error or a completed, correct solve — is acceptable; the Solver
// must stay usable afterwards.
func TestSolverCancelDuringBacktrans(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randSymMatrix(rng, 96)

	for _, workers := range []int{1, 4} {
		tc := trace.New()
		s := NewSolver(&Options{NB: 8, Workers: workers, Collector: tc})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, err := s.EigCtx(ctx, a)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: unexpected error %v", workers, err)
			}
			if err == nil {
				checkResidual(t, a, res)
			}
		}()
		// The tridiagonal phase is timed just before the fused sweep starts.
	wait:
		for tc.PhaseTime(trace.PhaseEigT) == 0 {
			select {
			case <-done:
				break wait
			default:
				runtime.Gosched()
			}
		}
		cancel()
		<-done

		res, err := s.Eig(a)
		if err != nil {
			t.Fatalf("workers=%d post-cancel solve: %v", workers, err)
		}
		checkResidual(t, a, res)
		s.Close()
	}
}

func TestSolverClose(t *testing.T) {
	a := NewMatrix(2)
	a.SetSym(0, 0, 1)
	a.SetSym(1, 1, 2)
	s := NewSolver(&Options{Workers: 2})
	if _, err := s.Eig(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := s.Eig(a); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if _, err := s.EigValues(a); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestSkipSymmetryCheck exercises both sides of the validation toggle: with
// the check on, an asymmetric matrix is rejected; with it off, the solver
// trusts the caller and still solves honest symmetric input correctly.
func TestSkipSymmetryCheck(t *testing.T) {
	bad := NewMatrix(3)
	bad.Set(0, 1, 1)
	bad.Set(1, 0, 5)
	if _, err := Eig(bad, nil); err == nil {
		t.Fatal("asymmetric matrix accepted with check on")
	}
	if _, err := Eig(bad, &Options{SkipSymmetryCheck: true}); err != nil {
		t.Fatalf("SkipSymmetryCheck still validated: %v", err)
	}

	rng := rand.New(rand.NewSource(15))
	a := randSymMatrix(rng, 20)
	res, err := Eig(a, &Options{SkipSymmetryCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResidual(t, a, res)
}

// TestEigTo checks the in-place entry point: the vectors land in dst, the
// result aliases dst, and everything matches the allocating path.
func TestEigTo(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 30
	a := randSymMatrix(rng, n)
	want, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSolver(nil)
	defer s.Close()
	dst := NewMatrix(n)
	vals, err := s.EigTo(context.Background(), a, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-want.Values[i]) > 1e-12 {
			t.Fatalf("value %d: %g vs %g", i, vals[i], want.Values[i])
		}
	}
	checkResidual(t, a, &Result{Values: vals, Vectors: dst})

	if _, err := s.EigTo(context.Background(), a, nil); err == nil {
		t.Fatal("nil destination accepted")
	}
	if _, err := s.EigTo(context.Background(), a, NewMatrix(n+1)); err == nil {
		t.Fatal("mis-sized destination accepted")
	}
}

// TestEigValuesSkipsBacktransform verifies the values-only fast path end to
// end: neither update phase runs and the blocked-reflector flop count drops
// to the stage-1 reduction's share (the Q₂/Q₁ applications never happen).
func TestEigValuesSkipsBacktransform(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randSymMatrix(rng, 40)
	tcFull := trace.New()
	if _, err := Eig(a, &Options{NB: 8, Collector: tcFull}); err != nil {
		t.Fatal(err)
	}
	tc := trace.New()
	if _, err := EigValues(a, &Options{NB: 8, Collector: tc}); err != nil {
		t.Fatal(err)
	}
	if vo, full := tc.Flops(trace.KLarfb), tcFull.Flops(trace.KLarfb); vo >= full {
		t.Fatalf("values-only solve performed %d Larfb flops, vectors solve %d", vo, full)
	}
	phases := tc.Phases()
	if _, ok := phases[trace.PhaseUpdateQ2]; ok {
		t.Fatal("values-only solve ran the Q2 update phase")
	}
	if _, ok := phases[trace.PhaseUpdateQ1]; ok {
		t.Fatal("values-only solve ran the Q1 update phase")
	}
}

// TestEigValuesRangeNonBI pins the satellite fix: a values-only range
// request with DC/QR must not accumulate eigenvectors (it runs the
// rotation-free Sterf path) yet still return the right slice of the
// spectrum.
func TestEigValuesRangeNonBI(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := 32
	a := randSymMatrix(rng, n)
	full, err := Eig(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{DivideAndConquer, QRIteration} {
		tc := trace.New()
		vals, err := EigValuesRange(a, 3, 12, &Options{Method: m, NB: 8, Collector: tc})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if len(vals) != 10 {
			t.Fatalf("method %d: %d values", m, len(vals))
		}
		for i := range vals {
			if math.Abs(vals[i]-full.Values[i+2]) > 1e-9 {
				t.Fatalf("method %d value %d: %g vs %g", m, i, vals[i], full.Values[i+2])
			}
		}
		// No eigenvector work: neither back-transformation phase may appear.
		phases := tc.Phases()
		if _, ok := phases[trace.PhaseUpdateQ2]; ok {
			t.Fatalf("method %d: values-only range ran the Q2 update", m)
		}
		if _, ok := phases[trace.PhaseUpdateQ1]; ok {
			t.Fatalf("method %d: values-only range ran the Q1 update", m)
		}
	}
}
