package eigen

import (
	"repro/internal/blas"
	"repro/internal/tune"
)

// TuneProfile is the persisted autotuning profile written by cmd/eigtune and
// consumed by Options.Tuning: the machine identity it was measured on plus
// the winning GEMM blocking, stage-1 tile size, column-block width and
// stage-1 look-ahead depth.
// Aliased from the internal tune package so external callers can construct,
// load (LoadTuneProfile) and save (its Save method) profiles.
type TuneProfile = tune.Profile

// TuneGemmConfig is the GEMM blocking section of a TuneProfile.
type TuneGemmConfig = tune.GemmConfig

// NewTuneProfile returns an empty profile stamped with this machine's
// identity, ready for its tuning fields to be filled in.
func NewTuneProfile() *TuneProfile { return tune.NewProfile() }

// LoadTuneProfile reads and validates a profile from an explicit path (the
// default path — $EIGEN_TUNE_PROFILE or the user cache dir — is loaded
// automatically at NewSolver; this is for profiles kept elsewhere).
func LoadTuneProfile(path string) (*TuneProfile, error) { return tune.Load(path) }

// DefaultTuneProfilePath reports where this machine's profile lives:
// $EIGEN_TUNE_PROFILE when set, else <user cache dir>/eigen/tune.json.
func DefaultTuneProfilePath() (string, error) { return tune.DefaultPath() }

// applyTuning resolves and applies the tune profile for one Solver
// construction: Options.Tuning when supplied, else the machine's persisted
// profile (tune.Cached), else nothing. It is called before normalize so the
// profile's values pass through the same clamping as user-set ones.
//
// Application is deliberately asymmetric:
//
//   - The GEMM blocking is process-wide (it describes the machine, not a
//     solver) and is installed via blas.SetBlocking. Its fields are
//     numerically neutral — the profile schema pins KC, the only blocking
//     parameter that changes rounding — so installing it never perturbs any
//     concurrent solver's results.
//   - NB, ColBlock and LookaheadDepth are per-solver and only fill fields
//     the caller left unset, so explicit Options always win over the profile.
//
// An invalid profile (schema or hardware mismatch) is ignored, not an error:
// a stale tuning file must never break solver construction. DisableTuning
// skips all of it.
func applyTuning(o *Options) {
	if o.DisableTuning {
		return
	}
	p := o.Tuning
	if p == nil {
		p = tune.Cached()
	}
	if p == nil || p.Validate() != nil {
		return
	}
	if g := p.Gemm; g.MC != 0 || g.NC != 0 || g.KC != 0 || g.Kernel != "" {
		kern, ok := blas.KernelFromString(g.Kernel)
		if ok {
			blas.SetBlocking(blas.Blocking{MC: g.MC, KC: g.KC, NC: g.NC, Kernel: kern})
		}
	}
	if o.NB == 0 && p.NB > 0 {
		o.NB = p.NB
	}
	if o.ColBlock == 0 && p.ColBlock > 0 {
		o.ColBlock = p.ColBlock
	}
	if o.LookaheadDepth == 0 && p.Lookahead > 0 {
		o.LookaheadDepth = p.Lookahead
	}
	// The SBR plan is one knob, not two: a profile's WideBand is only
	// meaningful together with its sweep list, so both are applied together
	// and only when the caller expressed no multi-sweep preference at all —
	// setting either field, or the kill-switch, pins the whole plan.
	if o.WideBand == 0 && len(o.BandSweeps) == 0 && !o.DisableMultiSweep &&
		p.WideBand > 0 && len(p.BandSweeps) > 0 {
		o.WideBand = p.WideBand
		o.BandSweeps = append([]int(nil), p.BandSweeps...)
	}
}
