package eigen

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/blas"
	"repro/internal/tune"
)

// neutralProfile returns a valid profile that moves every numerically-neutral
// knob off its default: different cache blocking (KC pinned), an explicit
// kernel, and a non-default column block. NB is left unset — it is the one
// knob that legitimately changes the computed basis, so the bitwise gate
// exercises everything else.
func neutralProfile() *tune.Profile {
	p := tune.NewProfile()
	p.Gemm = tune.GemmConfig{MC: 96, KC: tune.RequiredKC, NC: 256, Kernel: "4x4"}
	p.ColBlock = 48
	return p
}

// solveOnce runs one full eigensolve and returns values and the flattened
// eigenvector matrix.
func solveOnce(t *testing.T, a *Matrix, opts *Options) ([]float64, []float64) {
	t.Helper()
	res, err := Eig(a, opts)
	if err != nil {
		t.Fatalf("Eig: %v", err)
	}
	return res.Values, res.Vectors.data
}

// TestTuneProfileRoundTripSolve is the check.sh round-trip gate: save a
// profile, load it through the Solver's normal construction path (via
// EIGEN_TUNE_PROFILE), and require the solve to be bitwise identical to an
// untuned one.
func TestTuneProfileRoundTripSolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.json")
	t.Setenv(tune.ProfileEnv, path)
	tune.InvalidateCache()
	t.Cleanup(func() {
		tune.InvalidateCache()
		blas.SetBlocking(blas.DefaultBlocking())
	})

	if err := neutralProfile().Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := tune.Load(path)
	if err != nil {
		t.Fatalf("Load after Save: %v", err)
	}
	if !got.Equal(neutralProfile()) {
		t.Fatalf("profile did not survive the disk round trip: %+v", *got)
	}

	rng := rand.New(rand.NewSource(7))
	a := randSymMatrix(rng, 65)

	// Baseline: tuning disabled, stock blocking.
	blas.SetBlocking(blas.DefaultBlocking())
	vals0, vecs0 := solveOnce(t, a, &Options{DisableTuning: true})

	// Tuned: the profile is picked up from disk at Solver construction.
	tune.InvalidateCache()
	vals1, vecs1 := solveOnce(t, a, nil)
	if cb := blas.CurrentBlocking(); cb.MC != 96 || cb.NC != 256 || cb.Kernel != blas.Kernel4x4 {
		t.Fatalf("profile not applied to GEMM blocking: %+v", cb)
	}

	for i := range vals0 {
		if vals0[i] != vals1[i] {
			t.Fatalf("eigenvalue %d differs with profile: %v vs %v", i, vals0[i], vals1[i])
		}
	}
	for i := range vecs0 {
		if vecs0[i] != vecs1[i] {
			t.Fatalf("eigenvector element %d differs with profile: %v vs %v", i, vecs0[i], vecs1[i])
		}
	}
}

// TestTuningOptionsPrecedence checks the override ladder: explicit Options
// beat the profile, the profile beats defaults, and DisableTuning beats
// everything.
func TestTuningOptionsPrecedence(t *testing.T) {
	t.Cleanup(func() { blas.SetBlocking(blas.DefaultBlocking()) })
	p := neutralProfile()
	p.NB = 40

	s := NewSolver(&Options{Tuning: p})
	defer s.Close()
	if s.opts.NB != 40 || s.opts.ColBlock != 48 {
		t.Errorf("profile defaults not applied: NB=%d ColBlock=%d", s.opts.NB, s.opts.ColBlock)
	}

	s2 := NewSolver(&Options{Tuning: p, NB: 32, ColBlock: 64})
	defer s2.Close()
	if s2.opts.NB != 32 || s2.opts.ColBlock != 64 {
		t.Errorf("explicit options lost to profile: NB=%d ColBlock=%d", s2.opts.NB, s2.opts.ColBlock)
	}

	// The profile's SBR plan fills in only when the caller expressed no
	// multi-sweep preference: explicit fields or the kill-switch pin it.
	psbr := neutralProfile()
	psbr.WideBand = 64
	psbr.BandSweeps = []int{8}
	s4 := NewSolver(&Options{Tuning: psbr})
	defer s4.Close()
	if s4.opts.WideBand != 64 || len(s4.opts.BandSweeps) != 1 || s4.opts.BandSweeps[0] != 8 {
		t.Errorf("profile SBR plan not applied: WideBand=%d BandSweeps=%v", s4.opts.WideBand, s4.opts.BandSweeps)
	}
	s5 := NewSolver(&Options{Tuning: psbr, BandSweeps: []int{16}})
	defer s5.Close()
	if s5.opts.WideBand != 0 || len(s5.opts.BandSweeps) != 1 || s5.opts.BandSweeps[0] != 16 {
		t.Errorf("explicit SBR options lost to profile: WideBand=%d BandSweeps=%v", s5.opts.WideBand, s5.opts.BandSweeps)
	}
	s6 := NewSolver(&Options{Tuning: psbr, DisableMultiSweep: true})
	defer s6.Close()
	if s6.opts.WideBand != 0 || s6.opts.BandSweeps != nil {
		t.Errorf("DisableMultiSweep still applied profile SBR plan: WideBand=%d BandSweeps=%v", s6.opts.WideBand, s6.opts.BandSweeps)
	}

	blas.SetBlocking(blas.DefaultBlocking())
	s3 := NewSolver(&Options{Tuning: p, DisableTuning: true})
	defer s3.Close()
	if s3.opts.NB != 0 || s3.opts.ColBlock != 0 {
		t.Errorf("DisableTuning still applied profile: NB=%d ColBlock=%d", s3.opts.NB, s3.opts.ColBlock)
	}
	if cb := blas.CurrentBlocking(); cb != blas.DefaultBlocking() {
		t.Errorf("DisableTuning still changed blocking: %+v", cb)
	}
}

// TestTuningInvalidProfileIgnored: a hardware-mismatched profile must be
// silently skipped, never break construction.
func TestTuningInvalidProfileIgnored(t *testing.T) {
	t.Cleanup(func() { blas.SetBlocking(blas.DefaultBlocking()) })
	blas.SetBlocking(blas.DefaultBlocking())
	p := neutralProfile()
	p.NumCPU += 3
	p.NB = 40
	s := NewSolver(&Options{Tuning: p})
	defer s.Close()
	if s.opts.NB != 0 {
		t.Errorf("mismatched profile applied NB=%d", s.opts.NB)
	}
	if cb := blas.CurrentBlocking(); cb != blas.DefaultBlocking() {
		t.Errorf("mismatched profile changed blocking: %+v", cb)
	}
}

// TestNewSolverWithoutHomeDir pins container robustness: with $HOME and
// $XDG_CACHE_HOME both unset (minimal containers, systemd DynamicUser,
// scratch images), os.UserCacheDir errors — and the tune-profile auto-load
// must degrade silently instead of failing construction. NewSolver must
// build an untuned solver that solves correctly. Run by name in
// scripts/check.sh.
func TestNewSolverWithoutHomeDir(t *testing.T) {
	// t.Setenv to "" is how Go reaches the UserCacheDir error path: Unix
	// treats an empty $HOME exactly like an unset one.
	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	t.Setenv(tune.ProfileEnv, "")
	tune.InvalidateCache()
	t.Cleanup(tune.InvalidateCache)

	s := NewSolver(&Options{Workers: 2})
	defer s.Close()
	if s.opts.NB != 0 || s.opts.ColBlock != 0 {
		t.Errorf("HOME-less solver picked up a profile: NB=%d ColBlock=%d", s.opts.NB, s.opts.ColBlock)
	}
	res, err := s.Eig(diagMatrix([]float64{3, 1, 2}))
	if err != nil {
		t.Fatalf("HOME-less solver cannot solve: %v", err)
	}
	if len(res.Values) != 3 || res.Values[0] != 1 || res.Values[2] != 3 {
		t.Fatalf("HOME-less solve wrong: %v", res.Values)
	}
}
